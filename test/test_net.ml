(* Tests for the network substrate: topology, tunnels, path algorithms,
   generators, traffic, plus the util library (Rng/Stats/Table). *)

open Ffc_net
module Rng = Ffc_util.Rng
module Stats = Ffc_util.Stats
module Table = Ffc_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Util                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  let x = Rng.int64 a and y = Rng.int64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let prop_rng_int_bounds =
  QCheck.Test.make ~count:500 ~name:"Rng.int within bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let xs = Array.init 50 (fun i -> i) in
  Rng.shuffle rng xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 11 in
  let xs = Array.init 10 (fun i -> i) in
  let s = Rng.sample_without_replacement rng 4 xs in
  Alcotest.(check int) "size" 4 (List.length s);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare s))

let test_rng_bernoulli_bias () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000. in
  Alcotest.(check bool) "about 0.3" true (p > 0.27 && p < 0.33)

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "median" 3. (Stats.median xs);
  check_float "p0" 1. (Stats.percentile 0. xs);
  check_float "p100" 5. (Stats.percentile 100. xs);
  check_float "p25" 2. (Stats.percentile 25. xs)

let test_stats_cdf () =
  let c = Stats.cdf_of_samples [ 1.; 2.; 2.; 4. ] in
  check_float "F(2)" 0.75 (Stats.cdf_eval c 2.);
  check_float "F(0)" 0. (Stats.cdf_eval c 0.);
  check_float "F(9)" 1. (Stats.cdf_eval c 9.);
  check_float "inv(1)" 4. (Stats.cdf_inverse c 1.)

let prop_stats_cdf_inverse_monotone =
  QCheck.Test.make ~count:100 ~name:"cdf_inverse monotone"
    QCheck.(list_of_size Gen.(int_range 2 30) (float_range (-50.) 50.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let c = Stats.cdf_of_samples xs in
      let qs = [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 1. ] in
      let vals = List.map (Stats.cdf_inverse c) qs in
      let rec mono = function a :: (b :: _ as tl) -> a <= b +. 1e-9 && mono tl | _ -> true in
      mono vals)

let test_stats_misc () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "mean empty" 0. (Stats.mean []);
  check_float "stddev const" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "fraction above" 0.5 (Stats.fraction_above 2. [ 1.; 2.; 3.; 4. ])

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "x"; "y"; "z" ];
  Table.add_floats t "row" [ 1.5 ];
  let s = Table.to_string t in
  Alcotest.(check bool) "contains separator" true (String.length s > 0 && String.contains s '-');
  Alcotest.(check bool) "contains 1.50" true (contains_substring s "1.50")

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_basics () =
  let t = Topology.create 3 in
  let l01 = Topology.add_link t 0 1 10. in
  let _ = Topology.add_duplex t 1 2 5. in
  Alcotest.(check int) "links" 3 (Topology.num_links t);
  Alcotest.(check int) "switches" 3 (Topology.num_switches t);
  Alcotest.(check bool) "find" true (Topology.find_link t 0 1 = Some l01);
  Alcotest.(check bool) "find missing" true (Topology.find_link t 1 0 = None);
  Alcotest.(check int) "out of 1" 1 (List.length (Topology.out_links t 1));
  Alcotest.(check int) "in of 1" 2 (List.length (Topology.in_links t 1))

let test_topology_validation () =
  let t = Topology.create 2 in
  ignore (Topology.add_link t 0 1 1.);
  let expect_invalid f = try ignore (f ()); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> Topology.add_link t 0 1 1.);
  expect_invalid (fun () -> Topology.add_link t 0 0 1.);
  expect_invalid (fun () -> Topology.add_link t 0 1 (-2.));
  expect_invalid (fun () -> Topology.add_link t 0 5 1.)

(* ------------------------------------------------------------------ *)
(* Tunnels                                                             *)
(* ------------------------------------------------------------------ *)

let line_topo () =
  let t = Topology.create 4 in
  let l01 = Topology.add_link ~delay_ms:2. t 0 1 10. in
  let l12 = Topology.add_link ~delay_ms:3. t 1 2 10. in
  let l23 = Topology.add_link ~delay_ms:4. t 2 3 10. in
  (t, l01, l12, l23)

let test_tunnel_basics () =
  let _, l01, l12, l23 = line_topo () in
  let tn = Tunnel.create ~id:0 [ l01; l12; l23 ] in
  Alcotest.(check int) "hops" 3 (Tunnel.hops tn);
  check_float "latency" 9. (Tunnel.latency_ms tn);
  Alcotest.(check (list int)) "switches" [ 0; 1; 2; 3 ] (Tunnel.switches tn);
  Alcotest.(check (list int)) "intermediate" [ 1; 2 ] (Tunnel.intermediate_switches tn);
  Alcotest.(check bool) "uses l12" true (Tunnel.uses_link tn l12);
  Alcotest.(check bool) "survives" true
    (Tunnel.survives tn ~failed_links:(fun _ -> false) ~failed_switches:(fun _ -> false));
  Alcotest.(check bool) "dies on link" false
    (Tunnel.survives tn
       ~failed_links:(fun id -> id = l12.Topology.id)
       ~failed_switches:(fun _ -> false));
  Alcotest.(check bool) "dies on switch" false
    (Tunnel.survives tn ~failed_links:(fun _ -> false) ~failed_switches:(fun v -> v = 2))

let test_tunnel_validation () =
  let _, l01, l12, l23 = line_topo () in
  let expect_invalid f = try ignore (f ()); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  expect_invalid (fun () -> Tunnel.create ~id:0 []);
  expect_invalid (fun () -> Tunnel.create ~id:0 [ l01; l23 ]);
  ignore l12

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let diamond () =
  (* 0 -> {1, 2} -> 3 plus a direct long path 0 -> 3. *)
  let t = Topology.create 4 in
  let mk u v = ignore (Topology.add_link t u v 10.) in
  mk 0 1; mk 1 3; mk 0 2; mk 2 3; mk 0 3;
  t

let test_shortest () =
  let t = diamond () in
  match Paths.shortest t 0 3 with
  | Some [ l ] -> Alcotest.(check (pair int int)) "direct" (0, 3) (l.Topology.src, l.Topology.dst)
  | _ -> Alcotest.fail "expected the 1-hop path"

let test_shortest_banned () =
  let t = diamond () in
  let direct = Option.get (Topology.find_link t 0 3) in
  match Paths.shortest ~banned_links:(fun id -> id = direct.Topology.id) t 0 3 with
  | Some p -> Alcotest.(check int) "2 hops" 2 (List.length p)
  | None -> Alcotest.fail "path should exist"

let test_shortest_banned_switch () =
  let t = diamond () in
  (match Paths.shortest ~banned_switches:(fun v -> v = 1) t 0 3 with
  | Some p ->
    Alcotest.(check bool) "avoids 1" true
      (not (List.exists (fun (l : Topology.link) -> l.Topology.dst = 1) p))
  | None -> Alcotest.fail "path should exist");
  match Paths.shortest ~banned_switches:(fun v -> v = 3) t 0 3 with
  | None -> ()
  | Some _ -> Alcotest.fail "banned destination must yield None"

let test_metric_rejects_non_finite () =
  (* Dijkstra's ordering is meaningless under NaN (polymorphic compare used
     to sort NaN distances arbitrarily); non-finite or negative metrics must
     be rejected loudly instead. *)
  let t = diamond () in
  let reject name metric =
    Alcotest.check_raises name
      (Invalid_argument "Paths: metric must be finite and non-negative") (fun () ->
        ignore (Paths.shortest ~metric t 0 3))
  in
  reject "nan metric" (fun _ -> nan);
  reject "infinite metric" (fun _ -> infinity);
  reject "negative metric" (fun _ -> -1.);
  (* A finite custom metric still works and can re-rank paths. *)
  let direct = Option.get (Topology.find_link t 0 3) in
  let heavy (l : Topology.link) = if l.Topology.id = direct.Topology.id then 100. else 1. in
  match Paths.shortest ~metric:heavy t 0 3 with
  | Some p -> Alcotest.(check int) "heavy direct link avoided" 2 (List.length p)
  | None -> Alcotest.fail "path should exist"

let test_k_shortest () =
  let t = diamond () in
  let ps = Paths.k_shortest t 0 3 ~k:5 in
  Alcotest.(check int) "three distinct paths" 3 (List.length ps);
  (* Sorted by length. *)
  Alcotest.(check int) "first is direct" 1 (List.length (List.hd ps))

let test_pq_disjoint () =
  let t = diamond () in
  let ps = Paths.pq_disjoint t 0 3 ~k:3 ~p:1 ~q:1 in
  Alcotest.(check int) "three link-disjoint paths" 3 (List.length ps);
  (* No link shared. *)
  let all = List.concat ps in
  let ids = List.map (fun (l : Topology.link) -> l.Topology.id) all in
  Alcotest.(check int) "no duplicates" (List.length ids) (List.length (List.sort_uniq compare ids))

let prop_pq_disjoint_respects_budgets =
  QCheck.Test.make ~count:50 ~name:"pq_disjoint respects (p, q) budgets"
    QCheck.(triple small_int (int_range 1 2) (int_range 1 3))
    (fun (seed, p, q) ->
      let rng = Rng.create seed in
      let topo = Topo_gen.lnet ~sites:8 rng in
      let src = Rng.int rng 8 and dst = Rng.int rng 8 in
      QCheck.assume (src <> dst);
      let paths = Paths.pq_disjoint topo src dst ~k:6 ~p ~q in
      let link_counts = Hashtbl.create 16 and switch_counts = Hashtbl.create 16 in
      let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
      List.iter
        (fun path ->
          List.iter (fun (l : Topology.link) -> bump link_counts l.Topology.id) path;
          List.iter
            (fun (l : Topology.link) -> if l.Topology.dst <> dst then bump switch_counts l.Topology.dst)
            path)
        paths;
      Hashtbl.fold (fun _ c acc -> acc && c <= p) link_counts true
      && Hashtbl.fold (fun _ c acc -> acc && c <= q) switch_counts true)

let prop_k_shortest_loop_free =
  QCheck.Test.make ~count:50 ~name:"k-shortest paths are loop-free and distinct"
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let topo = Topo_gen.lnet ~sites:7 rng in
      let src = Rng.int rng 7 and dst = Rng.int rng 7 in
      QCheck.assume (src <> dst);
      let ps = Paths.k_shortest topo src dst ~k in
      List.for_all
        (fun path ->
          let sws =
            match path with
            | [] -> []
            | (first : Topology.link) :: _ ->
              first.Topology.src :: List.map (fun (l : Topology.link) -> l.Topology.dst) path
          in
          List.length sws = List.length (List.sort_uniq compare sws))
        ps
      && List.length ps = List.length (List.sort_uniq compare (List.map (List.map (fun (l : Topology.link) -> l.Topology.id)) ps)))

(* ------------------------------------------------------------------ *)
(* Generators and traffic                                              *)
(* ------------------------------------------------------------------ *)

let test_lnet_connected () =
  let rng = Rng.create 21 in
  let topo = Topo_gen.lnet ~sites:12 rng in
  let n = Topology.num_switches topo in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then
        match Paths.shortest topo u v with
        | Some _ -> ()
        | None -> Alcotest.failf "lnet disconnected: %d -> %d" u v
    done
  done

let test_snet_structure () =
  let topo = Topo_gen.snet () in
  Alcotest.(check int) "switches" 24 (Topology.num_switches topo);
  (* 12 intra-site duplex pairs + 19 site links x 4 switch pairs x 2 dirs *)
  Alcotest.(check int) "links" ((12 * 2) + (19 * 4 * 2)) (Topology.num_links topo)

let test_testbed_structure () =
  let topo = Topo_gen.testbed () in
  Alcotest.(check int) "switches" 8 (Topology.num_switches topo);
  Array.iter
    (fun (l : Topology.link) -> check_float "1 Gbps" 1. l.Topology.capacity)
    (Topology.links topo)

let test_make_flows () =
  let rng = Rng.create 5 in
  let topo = Topo_gen.lnet ~sites:10 rng in
  let spec = Traffic.make_flows ~nflows:12 rng topo in
  Alcotest.(check bool) "some flows" true (List.length spec.Traffic.flows > 5);
  List.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "at least 2 tunnels" true (Flow.num_tunnels f >= 2);
      let p, q = Flow.p_q f in
      Alcotest.(check bool) "p <= 1" true (p <= 1);
      Alcotest.(check bool) "q <= 3" true (q <= 3);
      Alcotest.(check bool) "demand positive" true
        (spec.Traffic.base_demand.(f.Flow.id) > 0.))
    spec.Traffic.flows

let test_series_shape () =
  let rng = Rng.create 6 in
  let topo = Topo_gen.lnet ~sites:6 rng in
  let spec = Traffic.make_flows ~nflows:5 rng topo in
  let s = Traffic.series rng ~intervals:7 spec in
  Alcotest.(check int) "intervals" 7 (Array.length s);
  Array.iter
    (fun d ->
      Alcotest.(check int) "flows" (Array.length spec.Traffic.base_demand) (Array.length d);
      Array.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.)) d)
    s

let test_split_priorities () =
  let rng = Rng.create 8 in
  let topo = Topo_gen.lnet ~sites:6 rng in
  let spec = Traffic.make_flows ~nflows:4 rng topo in
  let split = Traffic.split_priorities ~fractions:[ 0.2; 0.3; 0.5 ] spec in
  Alcotest.(check int) "3x flows" (3 * List.length spec.Traffic.flows)
    (List.length split.Traffic.flows);
  Alcotest.(check (float 1e-6)) "total preserved"
    (Traffic.total spec.Traffic.base_demand)
    (Traffic.total split.Traffic.base_demand);
  (* Ids are dense and match the demand array. *)
  List.iteri
    (fun i (f : Flow.t) -> Alcotest.(check int) "dense ids" i f.Flow.id)
    split.Traffic.flows

let test_split_priorities_validation () =
  let rng = Rng.create 8 in
  let topo = Topo_gen.lnet ~sites:6 rng in
  let spec = Traffic.make_flows ~nflows:4 rng topo in
  try
    ignore (Traffic.split_priorities ~fractions:[ 0.2; 0.2 ] spec);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "net"
    [
      ( "util",
        [
          case "rng deterministic" test_rng_deterministic;
          case "rng split" test_rng_split;
          QCheck_alcotest.to_alcotest prop_rng_int_bounds;
          case "shuffle is a permutation" test_rng_shuffle_permutation;
          case "sample without replacement" test_rng_sample_without_replacement;
          case "bernoulli bias" test_rng_bernoulli_bias;
          case "percentiles" test_stats_percentile;
          case "cdf" test_stats_cdf;
          QCheck_alcotest.to_alcotest prop_stats_cdf_inverse_monotone;
          case "stats misc" test_stats_misc;
          case "table render" test_table_render;
        ] );
      ( "topology",
        [ case "basics" test_topology_basics; case "validation" test_topology_validation ] );
      ( "tunnel", [ case "basics" test_tunnel_basics; case "validation" test_tunnel_validation ] );
      ( "paths",
        [
          case "shortest" test_shortest;
          case "shortest with banned link" test_shortest_banned;
          case "shortest with banned switch" test_shortest_banned_switch;
          case "non-finite metrics rejected" test_metric_rejects_non_finite;
          case "k-shortest" test_k_shortest;
          case "pq-disjoint" test_pq_disjoint;
          QCheck_alcotest.to_alcotest prop_pq_disjoint_respects_budgets;
          QCheck_alcotest.to_alcotest prop_k_shortest_loop_free;
        ] );
      ( "generators",
        [
          case "lnet connected" test_lnet_connected;
          case "snet structure" test_snet_structure;
          case "testbed structure" test_testbed_structure;
          case "make_flows" test_make_flows;
          case "series shape" test_series_shape;
          case "split priorities" test_split_priorities;
          case "split priorities validation" test_split_priorities_validation;
        ] );
    ]
