(* Tests for the observability subsystem (lib/obs) and its supports: the
   injectable wall clock (mock-clock full-record identity), registry
   semantics (disabled no-op, idempotent registration, gauge ordering),
   per-domain shard merging (histogram merge exactness and associativity,
   j=1 vs j=4 snapshot identity), span capture (nesting depth, exception
   safety, ring wrap-around) and the structured event log — plus the
   Stats/Table edge cases the flame/summary exporters lean on. *)

open Ffc_core
module Sim = Ffc_sim
module Rng = Ffc_util.Rng
module Clock = Ffc_util.Clock
module Stats = Ffc_util.Stats
module Table = Ffc_util.Table
module Pool = Ffc_util.Pool
module Obs = Ffc_obs.Obs

(* Every test leaves the registry the way it found it: disabled and empty. *)
let pristine f () =
  Obs.disable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let invalid_arg_raised f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Injectable clock                                                    *)
(* ------------------------------------------------------------------ *)

let test_clock_hook () =
  let tick = ref 0. in
  let fake () =
    tick := !tick +. 1.;
    !tick
  in
  let inside =
    Clock.with_hook fake (fun () ->
        let a = Clock.now_ms () in
        let b = Clock.now_ms () in
        (a, b, Clock.since_ms 0.5))
  in
  Alcotest.(check (triple (float 0.) (float 0.) (float 0.)))
    "hooked clock is the fake, tick by tick" (1., 2., 2.5) inside;
  (* with_hook restored the real clock, which moves forward. *)
  let t0 = Clock.now_ms () in
  Alcotest.(check bool) "real clock restored and monotone" true
    (Clock.since_ms t0 >= 0.);
  (* set_hook/clear_hook are the persistent form of the same switch. *)
  Clock.set_hook (fun () -> 42.);
  let pinned = Clock.now_ms () in
  Clock.clear_hook ();
  Alcotest.(check (float 0.)) "set_hook pins the clock" 42. pinned;
  (* with_hook restores on exception too. *)
  (try Clock.with_hook (fun () -> 7.) (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check bool) "hook restored after an exception" true
    (Clock.now_ms () <> 7.)

let instant_model =
  {
    Sim.Update_model.name = "instant";
    rpc_s = (fun _ -> 0.);
    per_rule_s = (fun _ -> 0.);
    switch_factor = (fun _ -> 1.);
    rules_per_update = 1;
    config_fail_prob = 0.;
    outage_prob = 0.;
    outage_duration_s = (fun _ -> 0.);
  }

let proactive ~kc ~ke =
  Sim.Interval_sim.Proactive
    (fun _ ->
      Ffc.config
        ~protection:(Te_types.protection ~kc ~ke ())
        ~encoding:`Duality ~mice_fraction:0. ~ingress_skip_fraction:0. ())

(* The neutral-telemetry bit-identity contract, upgraded: under a mock
   clock the wall-clock fields (attempt solve_ms) are a deterministic
   function of how many times the code path read the clock, so the two
   arms' {e full} stat records — no stripping — must be equal. A divergence
   in either control flow or clock-read count fails this where the stripped
   comparison would pass. *)
let test_mock_clock_full_records () =
  let sc = Sim.Scenario.lnet_sim ~sites:4 (Rng.create 42) in
  let input = sc.Sim.Scenario.input in
  let series = Sim.Scenario.demand_series (Rng.create 8) sc ~scale:1.0 ~intervals:3 in
  let fm = Sim.Fault_model.lnet_like input.Te_types.topo in
  let arm telemetry =
    let tick = ref 0. in
    Clock.with_hook
      (fun () ->
        tick := !tick +. 0.125;
        !tick)
      (fun () ->
        let cfg =
          Sim.Interval_sim.default_config ~audit_budget:2 ?telemetry
            ~mode:(proactive ~kc:1 ~ke:1) ~update_model:instant_model fm
        in
        Sim.Interval_sim.run ~rng:(Rng.create 9) cfg input ~demand_series:series)
  in
  let perfect = arm None and neutral = arm (Some Sim.Telemetry.neutral) in
  Alcotest.(check bool)
    "full stat records (solve_ms included) identical under the mock clock" true
    (perfect = neutral)

(* ------------------------------------------------------------------ *)
(* Stats and Table edge cases                                          *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  Alcotest.(check (float 0.)) "mean of nothing is 0" 0. (Stats.mean []);
  Alcotest.(check (float 0.)) "sum of nothing is 0" 0. (Stats.sum []);
  Alcotest.(check (float 0.)) "stddev of a singleton is 0" 0. (Stats.stddev [ 3. ]);
  Alcotest.(check bool) "percentile of nothing raises" true
    (invalid_arg_raised (fun () -> Stats.percentile 50. []));
  Alcotest.(check bool) "median of nothing raises" true
    (invalid_arg_raised (fun () -> Stats.median []));
  Alcotest.(check bool) "cdf of nothing raises" true
    (invalid_arg_raised (fun () -> Stats.cdf_of_samples []));
  Alcotest.(check bool) "NaN sample rejected" true
    (invalid_arg_raised (fun () -> Stats.percentile 50. [ 1.; nan ]))

let test_stats_single_sample () =
  (* With one sample every percentile is that sample — the interpolation
     has no second order statistic to lean on. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%g of a singleton" p)
        7.25
        (Stats.percentile p [ 7.25 ]))
    [ 0.; 25.; 50.; 99.; 100. ];
  Alcotest.(check (float 0.)) "median" 7.25 (Stats.median [ 7.25 ]);
  Alcotest.(check (float 0.)) "minimum" 7.25 (Stats.minimum [ 7.25 ]);
  Alcotest.(check (float 0.)) "maximum" 7.25 (Stats.maximum [ 7.25 ]);
  let c = Stats.cdf_of_samples [ 7.25 ] in
  Alcotest.(check (float 0.)) "any quantile of a one-point cdf" 7.25
    (Stats.cdf_inverse c 0.9);
  Alcotest.(check (float 0.)) "cdf below the point" 0. (Stats.cdf_eval c 7.);
  Alcotest.(check (float 0.)) "cdf at the point" 1. (Stats.cdf_eval c 7.25)

let test_table_edges () =
  (* Headers only: renders the header and separator, no data rows. *)
  let t = Table.create [ "a"; "bb" ] in
  let lines = String.split_on_char '\n' (String.trim (Table.to_string t)) in
  Alcotest.(check int) "empty table renders two lines" 2 (List.length lines);
  (* Short rows are padded, long headers set the width. *)
  let t = Table.create [ "name"; "x"; "y" ] in
  Table.add_row t [ "only" ];
  Table.add_floats t "f" [ 1.5; 2.25 ];
  let s = Table.to_string t in
  Alcotest.(check bool) "short row padded and floats at 2 decimals" true
    (String.length s > 0
    && String.length (String.concat "" (String.split_on_char '\n' s)) > 0);
  let has_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "add_floats prints 2 decimal places" true
    (has_sub "1.50" s && has_sub "2.25" s)

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_basics () =
  let c = Obs.counter "t.reg.c" in
  let g = Obs.gauge "t.reg.g" in
  let h = Obs.histogram "t.reg.h" in
  (* Disabled (the default): recording is a no-op. *)
  Obs.incr c;
  Obs.set g 5.;
  Obs.observe h 1.;
  let value name =
    match List.assoc_opt name (Obs.snapshot ()) with
    | Some (Obs.Counter_v v) | Some (Obs.Gauge_v v) -> v
    | Some (Obs.Hist_v hh) -> hh.Obs.Hist.count
    | None -> nan
  in
  Alcotest.(check (float 0.)) "disabled counter stays 0" 0. (value "t.reg.c");
  Alcotest.(check (float 0.)) "disabled hist stays empty" 0. (value "t.reg.h");
  Obs.enable ();
  Obs.incr c;
  Obs.incr c;
  Obs.add c 3.;
  Obs.set g 1.;
  Obs.set g 9.;
  Obs.observe h 2.;
  Obs.observe h 1024.;
  Alcotest.(check (float 0.)) "counter adds up" 5. (value "t.reg.c");
  Alcotest.(check (float 0.)) "gauge is last write" 9. (value "t.reg.g");
  (match List.assoc_opt "t.reg.h" (Obs.snapshot ()) with
  | Some (Obs.Hist_v hh) ->
    Alcotest.(check (float 0.)) "hist count" 2. hh.Obs.Hist.count;
    Alcotest.(check (float 0.)) "hist sum exact on integral samples" 1026.
      hh.Obs.Hist.sum;
    Alcotest.(check (float 0.)) "hist min" 2. hh.Obs.Hist.hmin;
    Alcotest.(check (float 0.)) "hist max" 1024. hh.Obs.Hist.hmax
  | _ -> Alcotest.fail "histogram missing from snapshot");
  (* Registration is idempotent by name, and kind mismatches are refused. *)
  let c' = Obs.counter "t.reg.c" in
  Obs.enable ();
  Obs.incr c';
  Alcotest.(check (float 0.)) "re-registration aliases the same counter" 6.
    (value "t.reg.c");
  Alcotest.(check bool) "kind mismatch rejected" true
    (invalid_arg_raised (fun () -> Obs.gauge "t.reg.c"))

let test_hist_merge_associative () =
  (* Build histograms the way a shard would: integral bucket counts and
     integer-valued samples, so float addition is exact and the merge is
     associative and commutative in the strict [=] sense. *)
  let mk samples =
    List.fold_left
      (fun h v ->
        let buckets = Array.copy h.Obs.Hist.buckets in
        let i = Obs.Hist.bucket_of v in
        buckets.(i) <- buckets.(i) +. 1.;
        {
          Obs.Hist.buckets;
          count = h.Obs.Hist.count +. 1.;
          sum = h.Obs.Hist.sum +. v;
          hmin = min h.Obs.Hist.hmin v;
          hmax = max h.Obs.Hist.hmax v;
        })
      Obs.Hist.empty samples
  in
  let a = mk [ 1.; 2.; 3.; 1024.; 7. ] in
  let b = mk [ 0.; 5.; 5.; 5. ] in
  let c = mk [ 123456.; 2. ] in
  let ( ++ ) = Obs.Hist.merge in
  Alcotest.(check bool) "associative" true ((a ++ b) ++ c = a ++ (b ++ c));
  Alcotest.(check bool) "commutative" true (a ++ b = b ++ a);
  Alcotest.(check bool) "empty is the identity" true
    (a ++ Obs.Hist.empty = a && Obs.Hist.empty ++ a = a);
  Alcotest.(check (float 0.)) "merged count" 11. ((a ++ b ++ c).Obs.Hist.count);
  (* bucket_of sanity at the edges the recorder leans on. *)
  Alcotest.(check int) "tiny samples land in bucket 0" 0 (Obs.Hist.bucket_of 0.);
  Alcotest.(check bool) "huge samples stay in range" true
    (Obs.Hist.bucket_of infinity < Obs.Hist.n_buckets);
  Alcotest.(check bool) "uppers are monotone" true
    (Obs.Hist.bucket_upper 0 < Obs.Hist.bucket_upper 1
    && Obs.Hist.bucket_upper (Obs.Hist.n_buckets - 1) = infinity)

(* The cross-domain form of the same exactness claim: a fixed workload
   fanned out over Pool.map leaves per-domain shards whose merge is
   independent of how the work was sharded. *)
let test_shard_merge_identity () =
  let c = Obs.counter "t.shard.c" in
  let h = Obs.histogram "t.shard.h" in
  let items = Array.init 512 (fun i -> i) in
  let snapshot_at jobs =
    Obs.reset ();
    Obs.enable ~tracing:false ();
    Pool.with_pool ~jobs (fun p ->
        ignore
          (Pool.map p
             (fun i ->
               Obs.incr c;
               Obs.observe h (float_of_int (i land 15));
               i)
             items));
    let snap =
      List.filter (fun (n, _) -> String.starts_with ~prefix:"t.shard." n) (Obs.snapshot ())
    in
    Obs.disable ();
    snap
  in
  let s1 = snapshot_at 1 and s4 = snapshot_at 4 in
  Alcotest.(check bool) "merged snapshot identical at j=1 and j=4" true (s1 = s4);
  (match List.assoc_opt "t.shard.c" s4 with
  | Some (Obs.Counter_v v) -> Alcotest.(check (float 0.)) "counter total" 512. v
  | _ -> Alcotest.fail "counter missing")

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Obs.enable ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "left" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.with_span "right" (fun () ->
          Obs.span_event "leaf" ~start_ms:0. ~dur_ms:1.));
  let sp = List.sort (fun a b -> compare a.Obs.start_ms b.Obs.start_ms) (Obs.spans ()) in
  let by_name n = List.find (fun s -> s.Obs.name = n) sp in
  Alcotest.(check int) "four spans retained" 4 (List.length sp);
  Alcotest.(check int) "outer at depth 0" 0 (by_name "outer").Obs.depth;
  Alcotest.(check int) "left nested once" 1 (by_name "left").Obs.depth;
  Alcotest.(check int) "right nested once" 1 (by_name "right").Obs.depth;
  Alcotest.(check int) "span_event leaf records below its parent" 2
    (by_name "leaf").Obs.depth;
  let outer = by_name "outer" and left = by_name "left" in
  Alcotest.(check bool) "parent brackets the child" true
    (outer.Obs.start_ms <= left.Obs.start_ms
    && outer.Obs.start_ms +. outer.Obs.dur_ms >= left.Obs.start_ms +. left.Obs.dur_ms);
  (* Exceptions record the span and re-raise; the depth unwinds. *)
  (try Obs.with_span "thrower" (fun () -> failwith "boom") with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  let sp = Obs.spans () in
  Alcotest.(check bool) "thrown-through span recorded" true
    (List.exists (fun s -> s.Obs.name = "thrower" && s.Obs.depth = 0) sp);
  Alcotest.(check bool) "depth unwound for the next span" true
    (List.exists (fun s -> s.Obs.name = "after" && s.Obs.depth = 0) sp);
  (* Exporters stay well-formed on what we recorded. *)
  Alcotest.(check bool) "trace json mentions every span" true
    (let j = Obs.trace_json () in
     List.for_all
       (fun n ->
         let needle = Printf.sprintf "\"name\":\"%s\"" n in
         let rec go i =
           i + String.length needle <= String.length j
           && (String.sub j i (String.length needle) = needle || go (i + 1))
         in
         go 0)
       [ "outer"; "left"; "right"; "leaf"; "thrower"; "after" ]);
  Alcotest.(check bool) "flame table renders" true
    (String.length (Obs.flame_table ()) > 0)

let test_span_ring_wraps () =
  (* A fresh domain picks up the capacity in force when its ring is
     created; overflow overwrites the oldest entries and counts drops. *)
  Obs.set_ring_capacity 16;
  Obs.enable ();
  let res =
    Domain.join
      (Domain.spawn (fun () ->
           for i = 1 to 40 do
             Obs.span_event "wrap" ~start_ms:(float_of_int i) ~dur_ms:1.
           done;
           ()))
  in
  res;
  Obs.set_ring_capacity 32768;
  let mine = List.filter (fun s -> s.Obs.name = "wrap") (Obs.spans ()) in
  Alcotest.(check int) "ring retains its capacity" 16 (List.length mine);
  Alcotest.(check bool) "oldest entries were dropped, newest kept" true
    (List.for_all (fun s -> s.Obs.start_ms > 24.) mine);
  Alcotest.(check bool) "drops accounted" true (Obs.dropped_spans () >= 24)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let test_events () =
  Obs.set_stderr_level None;
  Fun.protect ~finally:(fun () -> Obs.set_stderr_level (Some Obs.Warn)) @@ fun () ->
  (* Events are retained even with the registry disabled — the structured
     replacements for stderr warnings must never be silenced by the
     metrics switch. *)
  Obs.event ~level:Obs.Error "t.ev.disabled" [ ("k", Obs.Str "v") ];
  Obs.enable ();
  Obs.event "t.ev.info"
    [ ("n", Obs.Int 3); ("x", Obs.Float 1.5); ("b", Obs.Bool true) ];
  let evs = Obs.events () in
  Alcotest.(check int) "both events retained" 2 (List.length evs);
  (match evs with
  | [ first; second ] ->
    Alcotest.(check string) "oldest first" "t.ev.disabled" first.Obs.ev_name;
    Alcotest.(check bool) "level kept" true (first.Obs.ev_level = Obs.Error);
    Alcotest.(check string) "fields kept in order" "n" (fst (List.hd second.Obs.ev_fields))
  | _ -> Alcotest.fail "expected exactly two events");
  (* The JSON export carries the events. *)
  let j = Obs.metrics_json () in
  let has_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "metrics json includes the event log" true
    (has_sub "t.ev.disabled" j && has_sub "t.ev.info" j);
  Alcotest.(check bool) "prometheus text sanitises names" true
    (has_sub "ffc_" (Obs.metrics_prometheus ()))

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "hook install/restore" `Quick (pristine test_clock_hook);
          Alcotest.test_case "mock-clock full-record neutral identity" `Quick
            (pristine test_mock_clock_full_records);
        ] );
      ( "stats-table",
        [
          Alcotest.test_case "empty-sample edges" `Quick (pristine test_stats_empty);
          Alcotest.test_case "single-sample percentiles" `Quick
            (pristine test_stats_single_sample);
          Alcotest.test_case "table edges" `Quick (pristine test_table_edges);
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            (pristine test_registry_basics);
          Alcotest.test_case "histogram merge associativity" `Quick
            (pristine test_hist_merge_associative);
          Alcotest.test_case "shard merge identity j=1 vs j=4" `Quick
            (pristine test_shard_merge_identity);
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting, exceptions, exporters" `Quick
            (pristine test_span_nesting);
          Alcotest.test_case "ring wrap-around" `Quick (pristine test_span_ring_wraps);
        ] );
      ("events", [ Alcotest.test_case "structured event log" `Quick (pristine test_events) ]);
    ]
